// Shared-bandwidth contention model: the fluid fair-share arbiter's
// conservation invariant and re-pricing semantics (hand-computed), the
// zero-contention byte-equivalence with the pre-PR private-channel model,
// per-node report plumbing, and the determinism contract for the
// contention scenario (1 vs 8 worker threads — the TSan serve_ filter
// runs this file too).
#include <gtest/gtest.h>

#include <vector>

#include "serve/contention.hpp"
#include "serve/pool.hpp"
#include "serve/report.hpp"
#include "serve/request.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

// The canonical serve entry takes a TraceSource lvalue; tests that build
// throwaway queues name them here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

// ---- arbiter unit tests ------------------------------------------------

/// One shared node of two members: 64 B/device-cycle private channels at
/// the reference clock, an 80 B/fleet-cycle node budget — two concurrent
/// streams get 40 each (budget-bound), one gets its private 64.
FabricModel one_node_fabric() {
  NodeTopology topo;
  topo.device_node = {0, 0};
  topo.node_bw_bytes_per_cycle = {80};
  return FabricModel(topo, {{kRefClockMhz, 64}, {kRefClockMhz, 64}});
}

/// Exact rational check that each node's allocated rates sum to at most
/// its budget: sum(num_i / den_i) <= budget via 128-bit cross
/// multiplication, no floats.
void expect_conserved(const BandwidthArbiter& arbiter,
                      const FabricModel& fabric) {
  std::vector<__int128> num(static_cast<std::size_t>(fabric.num_nodes()), 0);
  std::vector<__int128> den(static_cast<std::size_t>(fabric.num_nodes()), 1);
  for (const BandwidthArbiter::StreamView& s : arbiter.active_streams()) {
    ASSERT_GE(s.node, 0);
    ASSERT_GT(s.rate_den, 0);
    const auto n = static_cast<std::size_t>(s.node);
    // num/den += rate_num/rate_den
    num[n] = num[n] * s.rate_den + static_cast<__int128>(s.rate_num) * den[n];
    den[n] *= s.rate_den;
  }
  for (int node = 0; node < fabric.num_nodes(); ++node) {
    const i64 budget = fabric.node_budget(node);
    if (budget <= 0) continue;  // unlimited: nothing to conserve
    const auto n = static_cast<std::size_t>(node);
    EXPECT_LE(num[n], static_cast<__int128>(budget) * den[n])
        << "node " << node << " oversubscribed";
  }
}

TEST(BandwidthArbiter, SoloStreamKeepsClosedFormPrice) {
  const FabricModel fabric = one_node_fabric();
  BandwidthArbiter arbiter(&fabric);
  std::vector<BandwidthArbiter::Reprice> repriced;

  // 64000 bytes at the solo rate of 64 B/cycle: exactly 1000 cycles.
  const auto info = arbiter.admit(/*device=*/0, /*slot=*/0, /*now=*/0,
                                  /*dram_bytes=*/64000, /*fabric_bytes=*/0,
                                  repriced);
  EXPECT_EQ(info.demand, 1);
  EXPECT_FALSE(info.contended);
  EXPECT_EQ(info.hop_cycles, 0);
  EXPECT_TRUE(repriced.empty());
  EXPECT_EQ(arbiter.resolve(/*slot=*/0, /*compute_fleet_cycles=*/100), 1000);
  // A lone stream never needs an arbiter event: it drains at its
  // closed-form finish, discovered lazily.
  EXPECT_EQ(arbiter.next_event(), -1);
  expect_conserved(arbiter, fabric);

  arbiter.advance(1000, repriced);
  EXPECT_TRUE(repriced.empty());
  arbiter.release(/*slot=*/0, /*now=*/1000);
  EXPECT_EQ(arbiter.node_active(0), 0);

  const BandwidthArbiter::NodeLedger& ledger = arbiter.ledgers()[0];
  EXPECT_EQ(ledger.bytes_drained, 64000);
  EXPECT_EQ(ledger.transfer_cycles, 1000);
  EXPECT_EQ(ledger.transfer_cycles_private, 1000);
  EXPECT_EQ(ledger.contended_dispatches, 0);
  EXPECT_EQ(ledger.demand_peak, 1);
}

TEST(BandwidthArbiter, SecondStreamRepricesTheFirst) {
  // Hand-computed fair-share timeline, pinning the re-pricing choice:
  //   t=0     A admits 64000 bytes, solo -> finish 1000, completion 1000.
  //   t=500   B admits 64000 bytes. A has drained 32000 at its private
  //           64 B/cyc; both go fluid at 40 B/cyc (budget 80 / 2):
  //             A: ceil(32000 / 40) = 800  -> finish 1300 (repriced)
  //             B: ceil(64000 / 40) = 1600 -> finish 2100
  //   t=1300  A drains; B has drained 32000 more (800 * 40) and gets the
  //           whole channel back: ceil(32000 / 64) = 500 -> finish 1800
  //           (repriced from 2100).
  const FabricModel fabric = one_node_fabric();
  BandwidthArbiter arbiter(&fabric);
  std::vector<BandwidthArbiter::Reprice> repriced;

  arbiter.admit(0, /*slot=*/0, /*now=*/0, 64000, 0, repriced);
  EXPECT_EQ(arbiter.resolve(0, /*compute_fleet_cycles=*/100), 1000);

  const auto info = arbiter.admit(1, /*slot=*/1, /*now=*/500, 64000, 0,
                                  repriced);
  EXPECT_EQ(info.demand, 2);
  EXPECT_TRUE(info.contended);
  ASSERT_EQ(repriced.size(), 1u);  // A had filed a completion; B has not
  EXPECT_EQ(repriced[0].slot, 0u);
  EXPECT_EQ(repriced[0].completion_cycle, 1300);
  EXPECT_EQ(arbiter.resolve(1, /*compute_fleet_cycles=*/100), 2100);
  EXPECT_EQ(arbiter.next_event(), 1300);
  EXPECT_EQ(arbiter.demand(0), 2);
  expect_conserved(arbiter, fabric);

  repriced.clear();
  arbiter.advance(1300, repriced);
  ASSERT_EQ(repriced.size(), 1u);  // B's fair share grew when A drained
  EXPECT_EQ(repriced[0].slot, 1u);
  EXPECT_EQ(repriced[0].completion_cycle, 1800);
  EXPECT_EQ(arbiter.next_event(), -1);  // one survivor: no rate changes left
  expect_conserved(arbiter, fabric);
  arbiter.release(0, 1300);

  repriced.clear();
  arbiter.advance(1800, repriced);
  EXPECT_TRUE(repriced.empty());
  arbiter.release(1, 1800);

  // Realized transfer legs: A 0..1300, B 500..1800 — both 1.3x their
  // private 1000-cycle leg.
  const BandwidthArbiter::NodeLedger& ledger = arbiter.ledgers()[0];
  EXPECT_EQ(ledger.bytes_drained, 128000);
  EXPECT_EQ(ledger.transfer_cycles, 2600);
  EXPECT_EQ(ledger.transfer_cycles_private, 2000);
  EXPECT_EQ(ledger.contended_dispatches, 1);
  EXPECT_EQ(ledger.demand_peak, 2);
}

TEST(BandwidthArbiter, ConservationHoldsThroughStaggeredStreams) {
  // Two nodes x two members, both budget-bound. Admit four overlapping
  // streams at staggered times and check the per-node rate sums after
  // every mutation, at every arbiter event, until all drain.
  NodeTopology topo;
  topo.device_node = {0, 0, 1, 1};
  topo.node_bw_bytes_per_cycle = {80, 96};
  const FabricModel fabric(
      topo, {{kRefClockMhz, 64}, {kRefClockMhz, 64}, {2 * kRefClockMhz, 64},
             {2 * kRefClockMhz, 64}});
  BandwidthArbiter arbiter(&fabric);
  std::vector<BandwidthArbiter::Reprice> repriced;

  const i64 bytes[4] = {64000, 48000, 96000, 24000};
  const i64 admit_at[4] = {0, 300, 450, 700};
  i64 now = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    arbiter.advance(admit_at[s], repriced);
    now = admit_at[s];
    arbiter.admit(s, s, now, bytes[s], 0, repriced);
    arbiter.resolve(s, /*compute_fleet_cycles=*/1);
    expect_conserved(arbiter, fabric);
  }
  // Step through every remaining arbiter event, then lazily finish the
  // solo tails.
  for (i64 next = arbiter.next_event(); next >= 0;
       next = arbiter.next_event()) {
    ASSERT_GT(next, now);
    now = next;
    arbiter.advance(now, repriced);
    expect_conserved(arbiter, fabric);
  }
  i64 drained = 0;
  for (const BandwidthArbiter::NodeLedger& ledger : arbiter.ledgers()) {
    drained += ledger.bytes_drained;
  }
  // Far enough that every solo tail has drained.
  arbiter.advance(now + 100000, repriced);
  EXPECT_TRUE(arbiter.active_streams().empty());
  for (std::size_t s = 0; s < 4; ++s) arbiter.release(s, now + 100000);
  drained = 0;
  for (const BandwidthArbiter::NodeLedger& ledger : arbiter.ledgers()) {
    drained += ledger.bytes_drained;
  }
  EXPECT_EQ(drained, 64000 + 48000 + 96000 + 24000);
}

// ---- zero-contention equivalence --------------------------------------

void expect_same_records(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord ra = a.records[i];
    const RequestRecord rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_cycle, rb.dispatch_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.completion_cycle, rb.completion_cycle)
        << "request " << ra.id;
    EXPECT_EQ(ra.accelerator, rb.accelerator) << "request " << ra.id;
    EXPECT_EQ(ra.batch_size, rb.batch_size) << "request " << ra.id;
    EXPECT_EQ(ra.service_cycles, rb.service_cycles) << "request " << ra.id;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_busy_cycles, b.total_busy_cycles);
}

TEST(Contention, SingleMemberNodesAtFullBudgetReproducePrivateChannels) {
  // One node per member, each budget set to exactly the member's private
  // channel rate in fleet units (big: 64 B/dev-cyc at 1000 MHz -> 64;
  // hbm: 256 B/dev-cyc at 2000 MHz -> 512), no hop matrix. Demand never
  // exceeds 1, so every stream keeps its closed-form solo price, solo_bw
  // equals the private rate, and hop cost is zero — the decomposed
  // compute/transfer pricing must land on the byte-identical timeline the
  // private-channel model produces.
  PoolConfig plain = mixed_fleet_pool_config(RoutePolicy::kLeastCost);
  PoolConfig noded = plain;
  noded.topology.device_node = {0, 1, 2, 3};
  noded.topology.node_bw_bytes_per_cycle = {64, 512, 64, 512};

  const ServeReport a = serve_queue(plain, mixed_fleet_trace());
  const ServeReport b = serve_queue(noded, mixed_fleet_trace());
  expect_same_records(a, b);

  EXPECT_TRUE(a.per_node.empty());  // no topology -> no node rows
  ASSERT_EQ(b.per_node.size(), 4u);
  for (const NodeStats& n : b.per_node) {
    EXPECT_EQ(n.contended_dispatches, 0);
    EXPECT_LE(n.demand_peak, 1);
    EXPECT_DOUBLE_EQ(n.slowdown(), 1.0);  // never stretched
  }
  for (const AcceleratorStats& acc : b.per_accelerator) {
    EXPECT_EQ(acc.hop_dispatches, 0);
    EXPECT_EQ(acc.hop_cycles, 0);
  }
}

// ---- contention scenario ----------------------------------------------

TEST(Contention, ScenarioReportsNodePressure) {
  const ServeReport r = serve_queue(fleet_contention_pool_config(true),
                                    fleet_contention_trace());
  ASSERT_EQ(r.per_node.size(), 2u);
  i64 drained = 0;
  for (const NodeStats& n : r.per_node) {
    EXPECT_EQ(n.devices, 2);
    EXPECT_EQ(n.bw_bytes_per_cycle, 80);
    EXPECT_GT(n.bytes_drained, 0);
    EXPECT_GT(n.contended_dispatches, 0);
    EXPECT_EQ(n.demand_peak, 2);  // two members: demand can never reach 3
    EXPECT_GE(n.slowdown(), 1.0);
    const double util = n.utilization(r.makespan_cycles);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
    drained += n.bytes_drained;
  }
  // Every dispatch streams its weights (no caches): the fleet moved real
  // traffic through the arbiter.
  EXPECT_GT(drained, i64{1} << 28);
  // The one-hop fabric was actually exercised.
  i64 hop_dispatches = 0;
  for (const AcceleratorStats& acc : r.per_accelerator) {
    hop_dispatches += acc.hop_dispatches;
    if (acc.hop_dispatches > 0) {
      EXPECT_GT(acc.hop_cycles, 0);
    }
  }
  EXPECT_GT(hop_dispatches, 0);
}

TEST(Contention, AwareRoutingBeatsBlindOnSlo) {
  // The runtime claim examples/serve_traffic enforces, pinned here too so
  // ctest catches a regression without running the example.
  const ServeReport blind = serve_queue(fleet_contention_pool_config(false),
                                        fleet_contention_trace());
  const ServeReport aware = serve_queue(fleet_contention_pool_config(true),
                                        fleet_contention_trace());
  EXPECT_GT(aware.slo_attainment(), blind.slo_attainment());
}

TEST(Contention, ScenarioDeterministicAcrossThreadCounts) {
  PoolConfig one = fleet_contention_pool_config(true);
  one.num_threads = 1;
  PoolConfig eight = fleet_contention_pool_config(true);
  eight.num_threads = 8;
  const ServeReport a = serve_queue(one, fleet_contention_trace());
  const ServeReport b = serve_queue(eight, fleet_contention_trace());
  expect_same_records(a, b);
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].bytes_drained, b.per_node[i].bytes_drained);
    EXPECT_EQ(a.per_node[i].transfer_cycles, b.per_node[i].transfer_cycles);
    EXPECT_EQ(a.per_node[i].contended_dispatches,
              b.per_node[i].contended_dispatches);
  }
}

}  // namespace
}  // namespace axon::serve
