#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include "serve/request.hpp"

namespace axon::serve {
namespace {

Request req(i64 id, i64 m, i64 k, i64 n, i64 arrival) {
  Request r;
  r.id = id;
  r.workload = "w" + std::to_string(id);
  r.gemm = {m, k, n};
  r.arrival_cycle = arrival;
  return r;
}

TEST(DynamicBatcherTest, NeverExceedsMaxBatch) {
  DynamicBatcher b({/*max_batch=*/3, /*max_wait_cycles=*/1000000});
  for (i64 i = 0; i < 10; ++i) b.admit(req(i, 4, 64, 64, i), i);
  auto ready = b.pop_ready(10);
  ASSERT_EQ(ready.size(), 3u);  // 10 requests -> three full batches + 1 open
  for (const auto& batch : ready) {
    EXPECT_EQ(batch.size(), 3);
    EXPECT_EQ(batch.gemm.M, 12);  // 3 * M=4 concatenated
    EXPECT_EQ(batch.gemm.K, 64);
    EXPECT_EQ(batch.gemm.N, 64);
  }
  EXPECT_EQ(b.open_requests(), 1u);
}

TEST(DynamicBatcherTest, RespectsMaxWait) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  b.admit(req(0, 4, 32, 32, 10), 10);
  b.admit(req(1, 4, 32, 32, 50), 50);
  EXPECT_TRUE(b.pop_ready(109).empty());  // deadline is 10 + 100 = 110
  auto ready = b.pop_ready(110);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].size(), 2);
  EXPECT_EQ(ready[0].ready_cycle, 110);  // closed at the deadline, not later
  EXPECT_TRUE(b.idle());
}

TEST(DynamicBatcherTest, TimeoutCloseUsesDeadlineEvenWhenPolledLate) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  b.admit(req(0, 2, 16, 16, 0), 0);
  auto ready = b.pop_ready(5000);  // poll long after the deadline
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].ready_cycle, 100);
}

TEST(DynamicBatcherTest, OnlyCompatibleShapesCoalesce) {
  DynamicBatcher b({/*max_batch=*/4, /*max_wait_cycles=*/0});
  b.admit(req(0, 4, 64, 64, 0), 0);
  b.admit(req(1, 8, 64, 64, 0), 0);   // same (K, N), different M: coalesces
  b.admit(req(2, 4, 64, 128, 0), 0);  // different N: separate batch
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  // Deterministic order: both closed at cycle 0, tie-broken by first id.
  EXPECT_EQ(ready[0].requests.front().id, 0);
  EXPECT_EQ(ready[0].size(), 2);
  EXPECT_EQ(ready[0].gemm.M, 12);
  EXPECT_EQ(ready[1].requests.front().id, 2);
  EXPECT_EQ(ready[1].size(), 1);
}

TEST(DynamicBatcherTest, MaxBatchOneDegeneratesToPassThrough) {
  DynamicBatcher b({/*max_batch=*/1, /*max_wait_cycles=*/999});
  b.admit(req(0, 4, 8, 8, 0), 0);
  b.admit(req(1, 4, 8, 8, 0), 0);
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].size(), 1);
  EXPECT_EQ(ready[1].size(), 1);
}

TEST(DynamicBatcherTest, FlushClosesEverythingOpen) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/1000000});
  b.admit(req(0, 4, 16, 16, 0), 0);
  b.admit(req(1, 4, 32, 32, 0), 0);
  auto ready = b.flush(7);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].ready_cycle, 7);
  EXPECT_EQ(ready[1].ready_cycle, 7);
  EXPECT_TRUE(b.idle());
}

TEST(DynamicBatcherTest, NextTimeoutTracksOldestOpenGroup) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  EXPECT_EQ(b.next_timeout(), -1);
  b.admit(req(0, 4, 16, 16, 40), 40);
  b.admit(req(1, 4, 32, 32, 10), 10);
  EXPECT_EQ(b.next_timeout(), 110);  // oldest admit 10 + 100
}

}  // namespace
}  // namespace axon::serve
