#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include "serve/request.hpp"

namespace axon::serve {
namespace {

Request req(i64 id, i64 m, i64 k, i64 n, i64 arrival) {
  Request r;
  r.id = id;
  // The batcher never consults the registry, so a bare id suffices.
  r.workload = static_cast<WorkloadId>(id);
  r.gemm = {m, k, n};
  r.arrival_cycle = arrival;
  return r;
}

TEST(DynamicBatcherTest, NeverExceedsMaxBatch) {
  DynamicBatcher b({/*max_batch=*/3, /*max_wait_cycles=*/1000000});
  for (i64 i = 0; i < 10; ++i) b.admit(req(i, 4, 64, 64, i), i);
  auto ready = b.pop_ready(10);
  ASSERT_EQ(ready.size(), 3u);  // 10 requests -> three full batches + 1 open
  for (const auto& batch : ready) {
    EXPECT_EQ(batch.size(), 3);
    EXPECT_EQ(batch.gemm.M, 12);  // 3 * M=4 concatenated
    EXPECT_EQ(batch.gemm.K, 64);
    EXPECT_EQ(batch.gemm.N, 64);
  }
  EXPECT_EQ(b.open_requests(), 1u);
}

TEST(DynamicBatcherTest, RespectsMaxWait) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  b.admit(req(0, 4, 32, 32, 10), 10);
  b.admit(req(1, 4, 32, 32, 50), 50);
  EXPECT_TRUE(b.pop_ready(109).empty());  // deadline is 10 + 100 = 110
  auto ready = b.pop_ready(110);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].size(), 2);
  EXPECT_EQ(ready[0].ready_cycle, 110);  // closed at the deadline, not later
  EXPECT_TRUE(b.idle());
}

TEST(DynamicBatcherTest, TimeoutCloseUsesDeadlineEvenWhenPolledLate) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  b.admit(req(0, 2, 16, 16, 0), 0);
  auto ready = b.pop_ready(5000);  // poll long after the deadline
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].ready_cycle, 100);
}

TEST(DynamicBatcherTest, OnlyCompatibleShapesCoalesce) {
  DynamicBatcher b({/*max_batch=*/4, /*max_wait_cycles=*/0});
  b.admit(req(0, 4, 64, 64, 0), 0);
  b.admit(req(1, 8, 64, 64, 0), 0);   // same (K, N), different M: coalesces
  b.admit(req(2, 4, 64, 128, 0), 0);  // different N: separate batch
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  // Deterministic order: both closed at cycle 0, tie-broken by first id.
  EXPECT_EQ(ready[0].members.front().id, 0);
  EXPECT_EQ(ready[0].size(), 2);
  EXPECT_EQ(ready[0].gemm.M, 12);
  EXPECT_EQ(ready[1].members.front().id, 2);
  EXPECT_EQ(ready[1].size(), 1);
}

TEST(DynamicBatcherTest, MaxBatchOneDegeneratesToPassThrough) {
  DynamicBatcher b({/*max_batch=*/1, /*max_wait_cycles=*/999});
  b.admit(req(0, 4, 8, 8, 0), 0);
  b.admit(req(1, 4, 8, 8, 0), 0);
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].size(), 1);
  EXPECT_EQ(ready[1].size(), 1);
}

TEST(DynamicBatcherTest, FlushClosesEverythingOpen) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/1000000});
  b.admit(req(0, 4, 16, 16, 0), 0);
  b.admit(req(1, 4, 32, 32, 0), 0);
  auto ready = b.flush(7);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].ready_cycle, 7);
  EXPECT_EQ(ready[1].ready_cycle, 7);
  EXPECT_TRUE(b.idle());
}

TEST(DynamicBatcherTest, NextTimeoutTracksOldestOpenGroup) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/100});
  EXPECT_EQ(b.next_timeout(), -1);
  b.admit(req(0, 4, 16, 16, 40), 40);
  b.admit(req(1, 4, 32, 32, 10), 10);
  EXPECT_EQ(b.next_timeout(), 110);  // oldest admit 10 + 100
}

TEST(DynamicBatcherTest, MaxBatchClosureStampsAdmitCycle) {
  // A group filled to max_batch closes at the admit that filled it — the
  // ready cycle must be that admit's cycle, not the later pop_ready call.
  DynamicBatcher b({/*max_batch=*/3, /*max_wait_cycles=*/1000000});
  b.admit(req(0, 4, 64, 64, 5), 5);
  b.admit(req(1, 4, 64, 64, 6), 6);
  b.admit(req(2, 4, 64, 64, 7), 7);
  auto ready = b.pop_ready(9000);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].ready_cycle, 7);
}

TEST(DynamicBatcherTest, BatchAggregatesDeadlineAndPriority) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/0});
  Request r0 = req(0, 4, 64, 64, 0);
  r0.deadline_cycle = 900;
  r0.priority = 2;
  Request r1 = req(1, 4, 64, 64, 0);
  r1.deadline_cycle = 500;
  r1.priority = 1;
  Request r2 = req(2, 4, 64, 64, 0);  // no deadline, default priority 0
  b.admit(std::move(r0), 0);
  b.admit(std::move(r1), 0);
  b.admit(std::move(r2), 0);
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].earliest_deadline, 500);  // tightest member SLO
  EXPECT_EQ(ready[0].top_priority, 0);         // most urgent member class
}

TEST(DynamicBatcherTest, NoDeadlineMembersLeaveBatchDeadlineUnset) {
  DynamicBatcher b({/*max_batch=*/2, /*max_wait_cycles=*/100});
  b.admit(req(0, 4, 64, 64, 0), 0);
  b.admit(req(1, 4, 64, 64, 0), 0);
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].earliest_deadline, -1);
}

TEST(DynamicBatcherTest, OpenViewsExposeSchedulerAggregates) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/1000000});
  Request r0 = req(0, 4, 64, 64, 50);
  r0.priority = 1;
  b.admit(std::move(r0), 50);
  Request r1 = req(1, 4, 32, 32, 10);
  r1.deadline_cycle = 700;
  b.admit(std::move(r1), 10);
  Request r2 = req(2, 8, 32, 32, 20);
  r2.deadline_cycle = 300;
  b.admit(std::move(r2), 20);

  const auto views = b.open_views();
  ASSERT_EQ(views.size(), 2u);  // (K, N) key order: (32,32) then (64,64)
  EXPECT_EQ(views[0].K, 32);
  EXPECT_EQ(views[0].size, 2);
  EXPECT_EQ(views[0].merged_m, 12);
  EXPECT_EQ(views[0].oldest_admit, 10);
  EXPECT_EQ(views[0].earliest_deadline, 300);
  EXPECT_EQ(views[0].top_priority, 0);
  EXPECT_EQ(views[1].K, 64);
  EXPECT_EQ(views[1].earliest_deadline, -1);
  EXPECT_EQ(views[1].top_priority, 1);
}

TEST(DynamicBatcherTest, CloseOpenRemovesExactlyThatGroup) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/1000000});
  b.admit(req(0, 4, 64, 64, 50), 50);
  b.admit(req(1, 4, 32, 32, 10), 10);
  ASSERT_TRUE(b.has_open());
  Batch closed = b.close_open(32, 32, StageClass::kGeneral, 60);
  EXPECT_EQ(closed.members.front().id, 1);
  EXPECT_EQ(closed.ready_cycle, 60);
  EXPECT_EQ(b.open_requests(), 1u);
  // The remaining group is untouched and still times out normally.
  EXPECT_EQ(b.next_timeout(), 50 + 1000000);
  // A ready batch queued earlier must be unaffected by close_open.
  auto still_ready = b.pop_ready(50 + 1000000);
  ASSERT_EQ(still_ready.size(), 1u);
  EXPECT_EQ(still_ready[0].members.front().id, 0);
}

TEST(BatchTest, AbsorbExtendsShapeAndTightensAggregates) {
  DynamicBatcher b({/*max_batch=*/8, /*max_wait_cycles=*/0});
  Request r0 = req(0, 4, 64, 64, 0);
  r0.deadline_cycle = 800;
  r0.priority = 1;
  b.admit(std::move(r0), 0);
  auto ready = b.pop_ready(0);
  ASSERT_EQ(ready.size(), 1u);
  Batch batch = std::move(ready[0]);

  Request late = req(5, 8, 64, 64, 30);
  late.deadline_cycle = 400;
  late.priority = 0;
  batch.absorb(std::move(late));
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.gemm.M, 12);
  EXPECT_EQ(batch.earliest_deadline, 400);
  EXPECT_EQ(batch.top_priority, 0);
}

}  // namespace
}  // namespace axon::serve
