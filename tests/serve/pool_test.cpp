#include "serve/pool.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "serve/request.hpp"
#include "workloads/table3.hpp"

namespace axon::serve {
namespace {

// Small GEMM mix so cycle-accurate runs stay fast.
std::vector<GemmWorkload> tiny_mix() {
  return {{"t_a", {4, 8, 8}}, {"t_b", {8, 8, 8}}, {"t_c", {4, 8, 16}}};
}

RequestQueue make_trace(int n, double mean_gap, std::uint64_t seed,
                        const std::vector<GemmWorkload>& mix) {
  Rng rng(seed);
  return generate_trace(mix, {n, mean_gap}, rng);
}

PoolConfig base_config() {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {8, 8}};
  cfg.num_accelerators = 3;
  cfg.batching = {/*max_batch=*/4, /*max_wait_cycles=*/200};
  return cfg;
}

// The canonical serve entry takes a TraceSource lvalue; tests that build
// throwaway queues name them here before serving.
ServeReport serve_queue(const PoolConfig& cfg, RequestQueue q) {
  AcceleratorPool pool(cfg);
  return pool.serve(q);
}

void expect_same_simulated_results(const ServeReport& a,
                                   const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& ra = a.records[i];
    const RequestRecord& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_cycle, rb.dispatch_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.completion_cycle, rb.completion_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.accelerator, rb.accelerator) << "request " << ra.id;
    EXPECT_EQ(ra.batch_size, rb.batch_size) << "request " << ra.id;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_busy_cycles, b.total_busy_cycles);
  EXPECT_EQ(a.total_batches, b.total_batches);
  const Histogram la = a.latency();
  const Histogram lb = b.latency();
  EXPECT_EQ(la.percentile(50), lb.percentile(50));
  EXPECT_EQ(la.percentile(95), lb.percentile(95));
  EXPECT_EQ(la.percentile(99), lb.percentile(99));
}

TEST(AcceleratorPoolTest, SimulatedCyclesDeterministicAcrossThreadCounts) {
  // The acceptance-criterion test: identical simulated timeline and
  // percentiles for 1 vs 8 worker threads, same seed.
  PoolConfig one = base_config();
  one.num_threads = 1;
  PoolConfig eight = base_config();
  eight.num_threads = 8;
  const auto trace = [] { return make_trace(48, 120.0, 99, tiny_mix()); };
  const ServeReport a = serve_queue(one, trace());
  const ServeReport b = serve_queue(eight, trace());
  expect_same_simulated_results(a, b);
}

TEST(AcceleratorPoolTest, CycleAccurateModeAlsoDeterministic) {
  PoolConfig one = base_config();
  one.exec = ExecMode::kCycleAccurate;
  one.num_threads = 1;
  PoolConfig four = one;
  four.num_threads = 4;
  const auto trace = [] { return make_trace(16, 200.0, 5, tiny_mix()); };
  const ServeReport a = serve_queue(one, trace());
  const ServeReport b = serve_queue(four, trace());
  expect_same_simulated_results(a, b);
}

TEST(AcceleratorPoolTest, EveryRequestServedExactlyOnce) {
  PoolConfig cfg = base_config();
  const int n = 40;
  const ServeReport rep =
      serve_queue(cfg, make_trace(n, 80.0, 11, tiny_mix()));
  ASSERT_EQ(rep.records.size(), static_cast<std::size_t>(n));
  std::set<i64> ids;
  for (const auto& r : rep.records) {
    ids.insert(r.id);
    EXPECT_GE(r.dispatch_cycle, r.arrival_cycle);
    EXPECT_GT(r.completion_cycle, r.dispatch_cycle);
    EXPECT_GE(r.accelerator, 0);
    EXPECT_LT(r.accelerator, cfg.num_accelerators);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_LE(r.batch_size, cfg.batching.max_batch);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(n));
  EXPECT_GT(rep.fleet_utilization(), 0.0);
  EXPECT_LE(rep.fleet_utilization(), 1.0);
}

TEST(AcceleratorPoolTest, BatchingShortensMakespanUnderHeavyLoad) {
  // One shape arriving back-to-back: coalescing amortizes array fill and
  // ragged tiles, so max_batch=8 must beat max_batch=1 end-to-end.
  const std::vector<GemmWorkload> mix = {{"w", {4, 32, 32}}};
  PoolConfig unbatched = base_config();
  unbatched.num_accelerators = 1;
  unbatched.batching = {1, 0};
  PoolConfig batched = unbatched;
  batched.batching = {8, 500};
  const auto trace = [&] { return make_trace(64, 10.0, 21, mix); };
  const ServeReport u = serve_queue(unbatched, trace());
  const ServeReport b = serve_queue(batched, trace());
  EXPECT_LT(b.makespan_cycles, u.makespan_cycles);
  EXPECT_GT(b.mean_batch_size(), 1.5);
  EXPECT_EQ(u.total_batches, 64);
}

TEST(AcceleratorPoolTest, MoreAcceleratorsShortenMakespan) {
  PoolConfig small = base_config();
  small.num_accelerators = 1;
  PoolConfig big = base_config();
  big.num_accelerators = 4;
  const auto trace = [] { return make_trace(48, 20.0, 31, tiny_mix()); };
  const ServeReport s = serve_queue(small, trace());
  const ServeReport l = serve_queue(big, trace());
  EXPECT_LT(l.makespan_cycles, s.makespan_cycles);
}

TEST(AcceleratorPoolTest, SjfBeatsFifoMeanLatencyOnBimodalBurst) {
  // A burst of one huge job followed by many tiny jobs, one accelerator,
  // no batching: FIFO serves the huge job first and delays everything;
  // SJF drains the tiny jobs first, cutting mean (and p50) latency.
  RequestQueue fifo_q;
  RequestQueue sjf_q;
  for (auto* q : {&fifo_q, &sjf_q}) {
    Request huge;
    huge.id = 0;
    huge.workload = q->intern("huge");
    huge.gemm = {256, 64, 64};
    huge.arrival_cycle = 0;
    q->push(huge);
    const WorkloadId tiny_id = q->intern("tiny");
    for (i64 i = 1; i <= 12; ++i) {
      Request tiny;
      tiny.id = i;
      tiny.workload = tiny_id;
      tiny.gemm = {4, 8, 8};
      tiny.arrival_cycle = 0;
      q->push(tiny);
    }
  }
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {1, 0};
  cfg.policy = SchedulePolicy::kFifo;
  const ServeReport fifo = serve_queue(cfg, std::move(fifo_q));
  cfg.policy = SchedulePolicy::kShortestJobFirst;
  const ServeReport sjf = serve_queue(cfg, std::move(sjf_q));
  const Histogram sjf_lat = sjf.latency();
  const Histogram fifo_lat = fifo.latency();
  EXPECT_LT(sjf_lat.mean(), fifo_lat.mean());
  EXPECT_LT(sjf_lat.percentile(50), fifo_lat.percentile(50));
  // Same total work either way.
  EXPECT_EQ(sjf.total_busy_cycles, fifo.total_busy_cycles);
}

Request make_req(RequestQueue& q, i64 id, const GemmShape& shape, i64 arrival,
                 i64 deadline = -1, int priority = 0) {
  Request r;
  r.id = id;
  r.workload = q.intern("w" + std::to_string(id));
  r.gemm = shape;
  r.arrival_cycle = arrival;
  r.deadline_cycle = deadline;
  r.priority = priority;
  return r;
}

TEST(AcceleratorPoolTest, EdfMeetsTightDeadlineFifoMisses) {
  // One accelerator, no batching. A huge no-SLO job and a tiny job with a
  // tight SLO arrive together. FIFO runs the huge job first (lower id) and
  // blows the tiny job's deadline; EDF runs the tiny job first and meets
  // it. The tiny job's budget is self-calibrated to twice its standalone
  // latency so the test tracks the cost model instead of hardcoding cycles.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {1, 0};
  const GemmShape huge{256, 64, 64};
  const GemmShape tiny{4, 8, 8};

  RequestQueue alone;
  alone.push(make_req(alone, 0, tiny, 0));
  const ServeReport solo = serve_queue(cfg, std::move(alone));
  const i64 budget = 2 * solo.records[0].latency_cycles();

  const auto trace = [&] {
    RequestQueue q;
    q.push(make_req(q, 0, huge, 0));
    q.push(make_req(q, 1, tiny, 0, /*deadline=*/budget));
    return q;
  };
  cfg.policy = SchedulePolicy::kFifo;
  const ServeReport fifo = serve_queue(cfg, trace());
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  const ServeReport edf = serve_queue(cfg, trace());

  EXPECT_LT(fifo.slo_attainment(), 1.0);
  EXPECT_DOUBLE_EQ(edf.slo_attainment(), 1.0);
  EXPECT_GT(edf.slo_attainment(), fifo.slo_attainment());
  // Deadline-free batches go last under EDF, so the huge job still runs.
  EXPECT_EQ(edf.num_requests(), 2u);
}

TEST(AcceleratorPoolTest, PriorityClassesOrderStrictlyUnderEveryPolicy) {
  // Two same-cycle singleton batches; id 0 is class 1, id 1 is class 0.
  // Under every policy the more urgent class dispatches first even though
  // FIFO's id tie-break would favour id 0.
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst,
        SchedulePolicy::kEarliestDeadlineFirst}) {
    PoolConfig cfg = base_config();
    cfg.num_accelerators = 1;
    cfg.batching = {1, 0};
    cfg.policy = policy;
    RequestQueue q;
    q.push(make_req(q, 0, {4, 8, 8}, 0, -1, /*priority=*/1));
    q.push(make_req(q, 1, {4, 8, 8}, 0, -1, /*priority=*/0));
    const ServeReport rep = serve_queue(cfg, std::move(q));
    ASSERT_EQ(rep.records.size(), 2u);
    EXPECT_LT(rep.records[1].dispatch_cycle, rep.records[0].dispatch_cycle)
        << to_string(policy);
  }
}

TEST(AcceleratorPoolTest, TiedBatchesDispatchByFirstIdUnderEveryPolicy) {
  // Three identical same-cycle singletons tie on priority, estimate,
  // deadline, and ready cycle — every policy must fall through to the
  // first-member-id tie-break, and repeat runs must agree exactly.
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst,
        SchedulePolicy::kEarliestDeadlineFirst}) {
    const auto run = [&] {
      PoolConfig cfg = base_config();
      cfg.num_accelerators = 1;
      cfg.batching = {1, 0};
      cfg.policy = policy;
      RequestQueue q;
      for (i64 i = 0; i < 3; ++i) q.push(make_req(q, i, {4, 8, 8}, 0, 100000));
      return serve_queue(cfg, std::move(q));
    };
    const ServeReport a = run();
    ASSERT_EQ(a.records.size(), 3u);
    EXPECT_LT(a.records[0].dispatch_cycle, a.records[1].dispatch_cycle);
    EXPECT_LT(a.records[1].dispatch_cycle, a.records[2].dispatch_cycle);
    expect_same_simulated_results(a, run());
  }
}

TEST(AcceleratorPoolTest, ContinuousAdmissionDispatchesWithoutMaxWait) {
  // A lone decode-style request with a free accelerator must not ripen for
  // max_wait when continuous admission is on; with it off, it waits the
  // full window (a later pending arrival keeps the trace open).
  const auto trace = [] {
    RequestQueue q;
    q.push(make_req(q, 0, {4, 8, 8}, 0));
    q.push(make_req(q, 1, {4, 8, 8}, 50000));
    return q;
  };
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {/*max_batch=*/8, /*max_wait_cycles=*/10000};

  const ServeReport waiting = serve_queue(cfg, trace());
  EXPECT_EQ(waiting.records[0].dispatch_cycle, 10000);

  cfg.batching.continuous_admission = true;
  const ServeReport eager = serve_queue(cfg, trace());
  EXPECT_EQ(eager.records[0].dispatch_cycle, 0);
  EXPECT_EQ(eager.records[1].dispatch_cycle, 50000);
}

TEST(AcceleratorPoolTest, LateArrivalJoinsUndispatchedReadyBatch) {
  // r0 occupies the only accelerator for a long time. r1's group times out
  // and sits ready; r2 arrives later with the same (K, N) and spare seats
  // and must ride r1's batch instead of opening a fresh group.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {/*max_batch=*/4, /*max_wait_cycles=*/100};
  cfg.batching.continuous_admission = true;
  RequestQueue q;
  q.push(make_req(q, 0, {512, 64, 64}, 0));   // long-running head of line
  q.push(make_req(q, 1, {4, 32, 32}, 10));
  q.push(make_req(q, 2, {4, 32, 32}, 500));   // after r1's group closed at 110
  const ServeReport rep = serve_queue(cfg, std::move(q));
  ASSERT_EQ(rep.records.size(), 3u);
  // r0 must still be busy when r2 arrives, or the scenario is vacuous.
  ASSERT_GT(rep.records[0].completion_cycle, 500);
  EXPECT_EQ(rep.records[1].batch_size, 2);
  EXPECT_EQ(rep.records[2].batch_size, 2);
  EXPECT_EQ(rep.records[1].completion_cycle, rep.records[2].completion_cycle);
}

TEST(AcceleratorPoolTest, EagerCloseOfOpenGroupsHonoursPriority) {
  // Continuous admission with one accelerator occupied: two open groups
  // wait, the older one class 1, the newer one class 0. When the
  // accelerator frees, the eager close must take the urgent group first —
  // by-age closing would invert the strict class ordering.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {/*max_batch=*/8, /*max_wait_cycles=*/1000000};
  cfg.batching.continuous_admission = true;
  RequestQueue q;
  q.push(make_req(q, 0, {64, 32, 32}, 0));                  // occupies the pool
  q.push(make_req(q, 1, {4, 16, 16}, 5, -1, /*priority=*/1));  // older group
  q.push(make_req(q, 2, {4, 8, 8}, 10, -1, /*priority=*/0));   // urgent group
  // A far-future arrival keeps the trace open, so the groups leave the
  // batcher through the eager-close path rather than the end-of-trace
  // flush.
  q.push(make_req(q, 3, {4, 8, 8}, 5000000));
  const ServeReport rep = serve_queue(cfg, std::move(q));
  ASSERT_EQ(rep.records.size(), 4u);
  EXPECT_LT(rep.records[2].dispatch_cycle, rep.records[1].dispatch_cycle);
}

TEST(AcceleratorPoolTest, UrgentOpenGroupBeatsLaxReadyBatch) {
  // Continuous admission: a class-1 batch is already closed and ready when
  // a class-0 group is still open. The freed accelerator must take the
  // urgent open group — ready batches get no precedence over more urgent
  // open groups.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {/*max_batch=*/2, /*max_wait_cycles=*/1000000};
  cfg.batching.continuous_admission = true;
  RequestQueue q;
  q.push(make_req(q, 0, {64, 32, 32}, 0));  // occupies the pool
  q.push(make_req(q, 1, {4, 16, 16}, 5, -1, /*priority=*/1));
  // closes at max_batch
  q.push(make_req(q, 2, {4, 16, 16}, 6, -1, /*priority=*/1));
  q.push(make_req(q, 3, {4, 8, 8}, 10, -1, /*priority=*/0));   // open, urgent
  q.push(make_req(q, 4, {4, 8, 8}, 5000000));  // keeps the trace open
  const ServeReport rep = serve_queue(cfg, std::move(q));
  ASSERT_EQ(rep.records.size(), 5u);
  EXPECT_LT(rep.records[3].dispatch_cycle, rep.records[1].dispatch_cycle);
}

TEST(AcceleratorPoolTest, SloScenarioDeterministicAcrossThreadCounts) {
  // The full PR-2 feature stack at once — bursty arrivals, SLO classes,
  // EDF, continuous admission — still yields a bit-identical simulated
  // timeline for 1 vs 8 worker threads.
  const auto trace = [] {
    BurstyTraceConfig tc;
    tc.num_requests = 96;
    tc.burst_interarrival_cycles = 40.0;
    tc.mean_on_cycles = 2000.0;
    tc.mean_off_cycles = 5000.0;
    tc.classes.default_policy = {/*slo=*/4000, /*priority=*/1};
    tc.classes.per_workload["t_a"] = {/*slo=*/1500, /*priority=*/0};
    Rng rng(77);
    return generate_bursty_trace(tiny_mix(), tc, rng);
  };
  PoolConfig cfg = base_config();
  cfg.policy = SchedulePolicy::kEarliestDeadlineFirst;
  cfg.batching.continuous_admission = true;
  cfg.num_threads = 1;
  const ServeReport a = serve_queue(cfg, trace());
  cfg.num_threads = 8;
  const ServeReport b = serve_queue(cfg, trace());
  expect_same_simulated_results(a, b);
  EXPECT_DOUBLE_EQ(a.slo_attainment(), b.slo_attainment());
}

TEST(AcceleratorPoolTest, CycleAccurateAgreesWithAccelerator) {
  // One request, no batching: the serve-layer compute cycles must equal a
  // direct Accelerator::run_gemm of the same synthesized operands.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.batching = {1, 0};
  cfg.dram_bytes_per_cycle = 0;  // infinite bandwidth: pure compute cycles
  RequestQueue q;
  Request r;
  r.id = 0;
  r.workload = q.intern("w");
  r.gemm = {8, 8, 8};
  r.arrival_cycle = 0;
  q.push(r);
  const ServeReport rep = serve_queue(cfg, std::move(q));
  ASSERT_EQ(rep.records.size(), 1u);

  Rng rng(cfg.data_seed ^ (0x9E3779B97F4A7C15ull * 1));
  const Matrix a = random_matrix(8, 8, rng);
  const Matrix b = random_matrix(8, 8, rng);
  Accelerator acc(cfg.accelerator);
  EXPECT_EQ(rep.records[0].compute_cycles(), acc.run_gemm(a, b).cycles);
}

}  // namespace
}  // namespace axon::serve
