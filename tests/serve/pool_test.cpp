#include "serve/pool.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "serve/request.hpp"
#include "workloads/table3.hpp"

namespace axon::serve {
namespace {

// Small GEMM mix so cycle-accurate runs stay fast.
std::vector<GemmWorkload> tiny_mix() {
  return {{"t_a", {4, 8, 8}}, {"t_b", {8, 8, 8}}, {"t_c", {4, 8, 16}}};
}

RequestQueue make_trace(int n, double mean_gap, std::uint64_t seed,
                        const std::vector<GemmWorkload>& mix) {
  Rng rng(seed);
  return generate_trace(mix, {n, mean_gap}, rng);
}

PoolConfig base_config() {
  PoolConfig cfg;
  cfg.accelerator = {.arch = ArchType::kAxon, .array = {8, 8}};
  cfg.num_accelerators = 3;
  cfg.batching = {/*max_batch=*/4, /*max_wait_cycles=*/200};
  return cfg;
}

void expect_same_simulated_results(const ServeReport& a,
                                   const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& ra = a.records[i];
    const RequestRecord& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_cycle, rb.dispatch_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.completion_cycle, rb.completion_cycle) << "request " << ra.id;
    EXPECT_EQ(ra.accelerator, rb.accelerator) << "request " << ra.id;
    EXPECT_EQ(ra.batch_size, rb.batch_size) << "request " << ra.id;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_busy_cycles, b.total_busy_cycles);
  EXPECT_EQ(a.total_batches, b.total_batches);
  EXPECT_EQ(a.latency.percentile(50), b.latency.percentile(50));
  EXPECT_EQ(a.latency.percentile(95), b.latency.percentile(95));
  EXPECT_EQ(a.latency.percentile(99), b.latency.percentile(99));
}

TEST(AcceleratorPoolTest, SimulatedCyclesDeterministicAcrossThreadCounts) {
  // The acceptance-criterion test: identical simulated timeline and
  // percentiles for 1 vs 8 worker threads, same seed.
  PoolConfig one = base_config();
  one.num_threads = 1;
  PoolConfig eight = base_config();
  eight.num_threads = 8;
  const auto trace = [] { return make_trace(48, 120.0, 99, tiny_mix()); };
  const ServeReport a = AcceleratorPool(one).serve(trace());
  const ServeReport b = AcceleratorPool(eight).serve(trace());
  expect_same_simulated_results(a, b);
}

TEST(AcceleratorPoolTest, CycleAccurateModeAlsoDeterministic) {
  PoolConfig one = base_config();
  one.exec = ExecMode::kCycleAccurate;
  one.num_threads = 1;
  PoolConfig four = one;
  four.num_threads = 4;
  const auto trace = [] { return make_trace(16, 200.0, 5, tiny_mix()); };
  const ServeReport a = AcceleratorPool(one).serve(trace());
  const ServeReport b = AcceleratorPool(four).serve(trace());
  expect_same_simulated_results(a, b);
}

TEST(AcceleratorPoolTest, EveryRequestServedExactlyOnce) {
  PoolConfig cfg = base_config();
  const int n = 40;
  const ServeReport rep =
      AcceleratorPool(cfg).serve(make_trace(n, 80.0, 11, tiny_mix()));
  ASSERT_EQ(rep.records.size(), static_cast<std::size_t>(n));
  std::set<i64> ids;
  for (const auto& r : rep.records) {
    ids.insert(r.id);
    EXPECT_GE(r.dispatch_cycle, r.arrival_cycle);
    EXPECT_GT(r.completion_cycle, r.dispatch_cycle);
    EXPECT_GE(r.accelerator, 0);
    EXPECT_LT(r.accelerator, cfg.num_accelerators);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_LE(r.batch_size, cfg.batching.max_batch);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(n));
  EXPECT_GT(rep.fleet_utilization(), 0.0);
  EXPECT_LE(rep.fleet_utilization(), 1.0);
}

TEST(AcceleratorPoolTest, BatchingShortensMakespanUnderHeavyLoad) {
  // One shape arriving back-to-back: coalescing amortizes array fill and
  // ragged tiles, so max_batch=8 must beat max_batch=1 end-to-end.
  const std::vector<GemmWorkload> mix = {{"w", {4, 32, 32}}};
  PoolConfig unbatched = base_config();
  unbatched.num_accelerators = 1;
  unbatched.batching = {1, 0};
  PoolConfig batched = unbatched;
  batched.batching = {8, 500};
  const auto trace = [&] { return make_trace(64, 10.0, 21, mix); };
  const ServeReport u = AcceleratorPool(unbatched).serve(trace());
  const ServeReport b = AcceleratorPool(batched).serve(trace());
  EXPECT_LT(b.makespan_cycles, u.makespan_cycles);
  EXPECT_GT(b.mean_batch_size(), 1.5);
  EXPECT_EQ(u.total_batches, 64);
}

TEST(AcceleratorPoolTest, MoreAcceleratorsShortenMakespan) {
  PoolConfig small = base_config();
  small.num_accelerators = 1;
  PoolConfig big = base_config();
  big.num_accelerators = 4;
  const auto trace = [] { return make_trace(48, 20.0, 31, tiny_mix()); };
  const ServeReport s = AcceleratorPool(small).serve(trace());
  const ServeReport l = AcceleratorPool(big).serve(trace());
  EXPECT_LT(l.makespan_cycles, s.makespan_cycles);
}

TEST(AcceleratorPoolTest, SjfBeatsFifoMeanLatencyOnBimodalBurst) {
  // A burst of one huge job followed by many tiny jobs, one accelerator,
  // no batching: FIFO serves the huge job first and delays everything;
  // SJF drains the tiny jobs first, cutting mean (and p50) latency.
  RequestQueue fifo_q;
  RequestQueue sjf_q;
  for (auto* q : {&fifo_q, &sjf_q}) {
    Request huge;
    huge.id = 0;
    huge.workload = "huge";
    huge.gemm = {256, 64, 64};
    huge.arrival_cycle = 0;
    q->push(huge);
    for (i64 i = 1; i <= 12; ++i) {
      Request tiny;
      tiny.id = i;
      tiny.workload = "tiny";
      tiny.gemm = {4, 8, 8};
      tiny.arrival_cycle = 0;
      q->push(tiny);
    }
  }
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.batching = {1, 0};
  cfg.policy = SchedulePolicy::kFifo;
  const ServeReport fifo = AcceleratorPool(cfg).serve(std::move(fifo_q));
  cfg.policy = SchedulePolicy::kShortestJobFirst;
  const ServeReport sjf = AcceleratorPool(cfg).serve(std::move(sjf_q));
  EXPECT_LT(sjf.latency.mean(), fifo.latency.mean());
  EXPECT_LT(sjf.latency.percentile(50), fifo.latency.percentile(50));
  // Same total work either way.
  EXPECT_EQ(sjf.total_busy_cycles, fifo.total_busy_cycles);
}

TEST(AcceleratorPoolTest, CycleAccurateAgreesWithAccelerator) {
  // One request, no batching: the serve-layer compute cycles must equal a
  // direct Accelerator::run_gemm of the same synthesized operands.
  PoolConfig cfg = base_config();
  cfg.num_accelerators = 1;
  cfg.exec = ExecMode::kCycleAccurate;
  cfg.batching = {1, 0};
  cfg.dram_bytes_per_cycle = 0;  // infinite bandwidth: pure compute cycles
  RequestQueue q;
  Request r;
  r.id = 0;
  r.workload = "w";
  r.gemm = {8, 8, 8};
  r.arrival_cycle = 0;
  q.push(r);
  const ServeReport rep = AcceleratorPool(cfg).serve(std::move(q));
  ASSERT_EQ(rep.records.size(), 1u);

  Rng rng(cfg.data_seed ^ (0x9E3779B97F4A7C15ull * 1));
  const Matrix a = random_matrix(8, 8, rng);
  const Matrix b = random_matrix(8, 8, rng);
  Accelerator acc(cfg.accelerator);
  EXPECT_EQ(rep.records[0].compute_cycles(), acc.run_gemm(a, b).cycles);
}

}  // namespace
}  // namespace axon::serve
