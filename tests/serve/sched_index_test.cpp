// SchedIndex: the O(log n) ready queue must be *indistinguishable* from
// the seed's linear scans. The property test drives both implementations
// through identical randomized push / pop / join interleavings — batches
// and open-group-style mixes across priorities, deadlines, estimates, and
// partially executed re-queues — under all three policies, and requires
// the same batch back from every operation. Plus directed tests for the
// index mechanics the fuzz can miss: lazy invalidation across class moves,
// join-registry retirement at max_batch, and partial-batch tracking.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "serve/sched_index.hpp"

namespace axon::serve {
namespace {

Request make_request(i64 id, const GemmShape& gemm, i64 arrival,
                     i64 deadline = -1, int priority = 0) {
  Request r;
  r.id = id;
  r.workload = 0;
  r.gemm = gemm;
  r.arrival_cycle = arrival;
  r.deadline_cycle = deadline;
  r.priority = priority;
  return r;
}

Batch make_batch(i64 first_id, const GemmShape& gemm, i64 ready_cycle,
                 i64 deadline = -1, int priority = 0, i64 m_executed = 0) {
  Batch b;
  b.gemm = gemm;
  b.ready_cycle = ready_cycle;
  b.earliest_deadline = deadline;
  b.top_priority = priority;
  b.m_executed = m_executed;
  b.members.push_back({first_id, 0});
  return b;
}

TEST(SchedIndexTest, PriorityClassesAreStrictUnderEveryPolicy) {
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kShortestJobFirst,
        SchedulePolicy::kEarliestDeadlineFirst}) {
    SchedIndex idx(policy, ReadyQueueImpl::kIndexed, /*max_batch=*/8,
                   /*track_joins=*/false);
    // Class-1 batch is older, cheaper, and has the earlier deadline — the
    // class-0 batch must still pop first under every policy.
    idx.push(make_batch(0, {4, 16, 16}, /*ready=*/0, /*deadline=*/100,
                        /*priority=*/1),
             /*estimate=*/10);
    idx.push(make_batch(1, {64, 64, 64}, /*ready=*/50, /*deadline=*/5000,
                        /*priority=*/0),
             /*estimate=*/100000);
    EXPECT_EQ(idx.pop_best().members.front().id, 1) << to_string(policy);
    EXPECT_EQ(idx.pop_best().members.front().id, 0);
    EXPECT_TRUE(idx.empty());
  }
}

TEST(SchedIndexTest, LazyInvalidationSurvivesAClassMove) {
  // A join that tightens priority moves the entry to another class heap;
  // the stale snapshot left in the old heap must not resurface.
  SchedIndex idx(SchedulePolicy::kEarliestDeadlineFirst,
                 ReadyQueueImpl::kIndexed, /*max_batch=*/8,
                 /*track_joins=*/true);
  idx.push(make_batch(0, {1, 16, 32}, 0, /*deadline=*/-1, /*priority=*/2), 50);
  idx.push(make_batch(1, {1, 16, 48}, 0, /*deadline=*/-1, /*priority=*/1), 50);
  const i64 slot = idx.find_joinable(16, 32, StageClass::kGeneral);
  ASSERT_GE(slot, 0);
  // The absorbed request carries priority 0 and a deadline: the batch now
  // outranks everything.
  idx.batch(slot).absorb(make_request(2, {1, 16, 32}, 10, /*deadline=*/500,
                                      /*priority=*/0));
  idx.joined(slot, 80);
  EXPECT_EQ(idx.pop_best().members.front().id, 0);
  EXPECT_EQ(idx.pop_best().members.front().id, 1);
  EXPECT_TRUE(idx.empty());
}

TEST(SchedIndexTest, JoinRegistryRetiresFullAndPartialBatches) {
  SchedIndex idx(SchedulePolicy::kFifo, ReadyQueueImpl::kIndexed,
                 /*max_batch=*/2, /*track_joins=*/true);
  // A partially executed batch is never joinable.
  idx.push(make_batch(0, {8, 16, 32}, 0, -1, 0, /*m_executed=*/4), 10);
  EXPECT_LT(idx.find_joinable(16, 32, StageClass::kGeneral), 0);
  EXPECT_TRUE(idx.has_partial());
  // A fresh batch is joinable until it reaches max_batch.
  idx.push(make_batch(1, {1, 16, 32}, 5), 10);
  const i64 slot = idx.find_joinable(16, 32, StageClass::kGeneral);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(idx.batch(slot).members.front().id, 1);
  idx.batch(slot).absorb(make_request(2, {1, 16, 32}, 10));
  idx.joined(slot, 20);  // size hit max_batch=2: no longer joinable
  EXPECT_LT(idx.find_joinable(16, 32, StageClass::kGeneral), 0);
  idx.pop_best();
  idx.pop_best();
  EXPECT_FALSE(idx.has_partial());
  EXPECT_TRUE(idx.empty());
}

TEST(SchedIndexTest, JoinFindsTheEarliestPushedMatch) {
  // Several joinable batches share (K, N): the join must land on the
  // earliest-pushed one — the seed scan's first match in ready order —
  // regardless of scheduling keys.
  for (const ReadyQueueImpl impl :
       {ReadyQueueImpl::kIndexed, ReadyQueueImpl::kScanReference}) {
    SchedIndex idx(SchedulePolicy::kShortestJobFirst, impl, /*max_batch=*/8,
                   /*track_joins=*/true);
    idx.push(make_batch(0, {1, 16, 32}, 0), /*estimate=*/900);
    idx.push(make_batch(1, {1, 16, 32}, 1), /*estimate=*/5);
    idx.push(make_batch(2, {1, 16, 32}, 2), /*estimate=*/1);
    const i64 slot = idx.find_joinable(16, 32, StageClass::kGeneral);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(idx.batch(slot).members.front().id, 0) << to_string(impl);
  }
}

// ---- the property test ------------------------------------------------

/// Drives indexed and scan-reference through an identical randomized op
/// sequence and asserts every observable answer matches.
void fuzz_against_reference(SchedulePolicy policy, std::uint64_t seed) {
  constexpr int kMaxBatch = 4;
  SchedIndex indexed(policy, ReadyQueueImpl::kIndexed, kMaxBatch, true);
  SchedIndex scan(policy, ReadyQueueImpl::kScanReference, kMaxBatch, true);
  Rng rng(seed);
  // A small (K, N) universe so joins and key collisions actually happen.
  const std::vector<std::pair<i64, i64>> shapes = {
      {16, 32}, {16, 48}, {64, 64}};
  i64 next_id = 0;
  std::size_t live = 0;
  for (int op = 0; op < 4000; ++op) {
    const int action = rng.uniform_int(0, 99);
    if (action < 45 || live == 0) {
      const auto [K, N] = shapes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(shapes.size()) - 1))];
      const i64 M = rng.uniform_int(1, 64);
      const i64 ready = rng.uniform_int(0, 500);  // dense: forces ties
      const i64 deadline = rng.bernoulli(0.5)
                               ? ready + rng.uniform_int(0, 400)
                               : -1;
      const int priority = rng.uniform_int(0, 2);
      const i64 m_executed =
          rng.bernoulli(0.2) ? rng.uniform_int(1, static_cast<int>(M)) - 1
                             : 0;
      Batch b = make_batch(next_id++, {M, K, N}, ready, deadline, priority,
                           m_executed);
      const i64 estimate = rng.uniform_int(1, 300);  // dense: forces ties
      Batch b2 = b;  // identical copy for the reference
      indexed.push(std::move(b), estimate);
      scan.push(std::move(b2), estimate);
      ++live;
    } else if (action < 70) {
      const PickKey a = indexed.best_key();
      const PickKey b = scan.best_key();
      EXPECT_FALSE(key_better(policy, a, b) || key_better(policy, b, a))
          << "best_key diverged at op " << op;
      const Batch x = indexed.pop_best();
      const Batch y = scan.pop_best();
      ASSERT_EQ(x.members.front().id, y.members.front().id)
          << "pop order diverged at op " << op << " under "
          << to_string(policy);
      ASSERT_EQ(x.gemm, y.gemm);
      ASSERT_EQ(x.m_executed, y.m_executed);
      --live;
    } else if (action < 90) {
      const auto [K, N] = shapes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(shapes.size()) - 1))];
      const i64 sx = indexed.find_joinable(K, N, StageClass::kGeneral);
      const i64 sy = scan.find_joinable(K, N, StageClass::kGeneral);
      ASSERT_EQ(sx >= 0, sy >= 0) << "join hit/miss diverged at op " << op;
      if (sx >= 0) {
        ASSERT_EQ(indexed.batch(sx).members.front().id,
                  scan.batch(sy).members.front().id)
            << "join target diverged at op " << op;
        const Request r = make_request(next_id++, {1, K, N}, 600,
                                       rng.bernoulli(0.5) ? 700 : -1,
                                       rng.uniform_int(0, 2));
        const i64 estimate = rng.uniform_int(1, 300);
        indexed.batch(sx).absorb(r);
        scan.batch(sy).absorb(r);
        indexed.joined(sx, estimate);
        scan.joined(sy, estimate);
      }
    } else {
      EXPECT_EQ(indexed.has_partial(), scan.has_partial());
      EXPECT_EQ(indexed.size(), scan.size());
    }
  }
  // Drain: the full remaining pop order must agree.
  while (!scan.empty()) {
    ASSERT_EQ(indexed.pop_best().members.front().id,
              scan.pop_best().members.front().id);
  }
  EXPECT_TRUE(indexed.empty());
}

TEST(SchedIndexPropertyTest, FifoMatchesReference) {
  fuzz_against_reference(SchedulePolicy::kFifo, 0xF1F0);
}

TEST(SchedIndexPropertyTest, SjfMatchesReference) {
  fuzz_against_reference(SchedulePolicy::kShortestJobFirst, 0x51F);
}

TEST(SchedIndexPropertyTest, EdfMatchesReference) {
  fuzz_against_reference(SchedulePolicy::kEarliestDeadlineFirst, 0xEDF);
}

}  // namespace
}  // namespace axon::serve
