// The named-scenario registry (serve/scenarios): the canonical name list
// the bench artifact is keyed by, loud failure on unknown names, and the
// no-drift guarantee — a spec resolved by name serves record-identically
// to the same scenario assembled from its building-block functions, so
// BENCH_serve.json rows, the example's sections, and the tests can never
// quietly diverge.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::serve {
namespace {

TEST(ScenarioRegistryTest, NamesAreCanonicalOrderedAndUnique) {
  const std::vector<std::string> expected = {
      "resnet50_pool4_batch8",
      "decode_pool4_batch8",
      "fleet_round_robin",
      "fleet_least_cost",
      "chunked_prefill_whole",
      "chunked_prefill_deadline_aware",
      "fleet_contention_blind",
      "fleet_contention_aware",
      "disagg_prefill_decode_unified",
      "disagg_prefill_decode_split",
      "serve_scale_200k",
      "closed_loop_estimate",
      "closed_loop_feedback",
      "serve_scale_10m",
  };
  EXPECT_EQ(scenario_names(), expected);
  const std::set<std::string> unique(scenario_names().begin(),
                                     scenario_names().end());
  EXPECT_EQ(unique.size(), scenario_names().size());
}

TEST(ScenarioRegistryTest, UnknownNameFailsLoudly) {
  EXPECT_THROW(scenario("no_such_scenario"), CheckError);
  EXPECT_THROW(scenario(""), CheckError);
}

TEST(ScenarioRegistryTest, EverySpecIsSelfConsistent) {
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec& spec = scenario(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.summary.empty()) << name;
    ASSERT_TRUE(spec.make_trace != nullptr) << name;
    EXPECT_NO_THROW(spec.config.validate()) << name;
  }
}

void expect_identical_records(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.total_batches, b.total_batches);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

ServeReport serve_spec(const ScenarioSpec& spec) {
  AcceleratorPool pool(spec.config);
  const std::unique_ptr<TraceSource> source = spec.make_trace();
  return pool.serve(*source);
}

// A by-name lookup and a hand-assembled run of the same scenario are the
// same simulation — single-stage...
TEST(ScenarioRegistryTest, SpecMatchesDirectConstructionSingleStage) {
  AcceleratorPool pool(mixed_fleet_pool_config(RoutePolicy::kLeastCost));
  RequestQueue q = mixed_fleet_trace();
  expect_identical_records(serve_spec(scenario("fleet_least_cost")),
                           pool.serve(q));
}

// ...and multi-stage, through the whole re-admission path.
TEST(ScenarioRegistryTest, SpecMatchesDirectConstructionMultiStage) {
  AcceleratorPool pool(disagg_pool_config(StageAffinity::kStrict));
  RequestQueue q = disagg_trace();
  expect_identical_records(serve_spec(scenario("disagg_prefill_decode_split")),
                           pool.serve(q));
}

}  // namespace
}  // namespace axon::serve
