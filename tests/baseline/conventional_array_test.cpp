#include "baseline/conventional_array.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/sparsity.hpp"

namespace axon {
namespace {

// ---------------------------------------------------------------------
// Parameterized functional + timing sweep: (dataflow, M, K, N) on an array
// that exactly fits one tile. Verifies the result against the reference
// GEMM and the cycle count against SCALE-SIM equation (1):
//   tau = 2*S_R + S_C + T - 2.
using Param = std::tuple<Dataflow, int, int, int>;

class SaSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SaSweep, ResultAndCyclesMatchEquationOne) {
  const auto [df, m, k, n] = GetParam();
  Rng rng(1234);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);

  // Array sized exactly to the tile's spatial needs.
  ArrayShape shape;
  switch (df) {
    case Dataflow::kOS: shape = {m, n}; break;
    case Dataflow::kWS: shape = {k, m}; break;
    case Dataflow::kIS: shape = {k, n}; break;
  }
  ConventionalArraySim sim(shape);
  const GemmRunResult r = sim.run(df, a, b);

  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3))
      << "max diff " << r.out.max_abs_diff(gemm_ref(a, b));

  i64 s_r = 0, s_c = 0, t = 0;
  switch (df) {
    case Dataflow::kOS: s_r = m; s_c = n; t = k; break;
    case Dataflow::kWS: s_r = k; s_c = m; t = n; break;
    case Dataflow::kIS: s_r = k; s_c = n; t = m; break;
  }
  EXPECT_EQ(r.cycles, 2 * s_r + s_c + t - 2) << "eq. (1) violated";
  EXPECT_EQ(r.fill_cycles, s_r + s_c - 2) << "Manhattan fill violated";
  // Every PE performs exactly T MACs (incl. gated): total = S_R*S_C*T.
  EXPECT_EQ(r.macs.total_macs(), s_r * s_c * t);
}

INSTANTIATE_TEST_SUITE_P(
    AllDataflows, SaSweep,
    ::testing::Combine(::testing::Values(Dataflow::kOS, Dataflow::kWS,
                                         Dataflow::kIS),
                       ::testing::Values(1, 3, 8, 16),   // M
                       ::testing::Values(2, 5, 16),      // K
                       ::testing::Values(1, 4, 16)),     // N
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param)) + "_K" +
             std::to_string(std::get<2>(info.param)) + "_N" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------

TEST(ConventionalArrayTest, TileSmallerThanArrayStillCorrect) {
  Rng rng(7);
  const Matrix a = random_matrix(3, 5, rng);
  const Matrix b = random_matrix(5, 4, rng);
  ConventionalArraySim sim({16, 16});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 1e-3));
  // Cycle count follows the *used* region (3x4), not the physical array.
  EXPECT_EQ(r.cycles, 2 * 3 + 4 + 5 - 2);
}

TEST(ConventionalArrayTest, TileLargerThanArrayRejected) {
  ConventionalArraySim sim({4, 4});
  Rng rng(1);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(3, 4, rng);
  EXPECT_THROW(sim.run(Dataflow::kOS, a, b), CheckError);
  // WS binds K to rows: K=5 > 4 must also reject.
  const Matrix a2 = random_matrix(4, 5, rng);
  const Matrix b2 = random_matrix(5, 2, rng);
  EXPECT_THROW(sim.run(Dataflow::kWS, a2, b2), CheckError);
}

TEST(ConventionalArrayTest, SramLoadCountsMatchOperandSizes) {
  Rng rng(3);
  const int m = 4, k = 6, n = 5;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  ConventionalArraySim sim({8, 8});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_EQ(r.stats.get("sram.ifmap.loads"), m * k);
  EXPECT_EQ(r.stats.get("sram.filter.loads"), k * n);
}

TEST(ConventionalArrayTest, ZeroGatingPreservesResults) {
  Rng rng(5);
  Matrix a = random_sparse_matrix(6, 8, 0.3, rng);
  Matrix b = random_sparse_matrix(8, 6, 0.2, rng);
  ConventionalArraySim gated({8, 8}, {.zero_gating = true});
  ConventionalArraySim plain({8, 8}, {.zero_gating = false});
  const GemmRunResult rg = gated.run(Dataflow::kOS, a, b);
  const GemmRunResult rp = plain.run(Dataflow::kOS, a, b);
  EXPECT_EQ(rg.out, rp.out);
  EXPECT_EQ(rg.cycles, rp.cycles);  // gating saves power, not time
  EXPECT_EQ(rg.macs.gated_macs, exact_gated_macs(a, b));
  EXPECT_EQ(rp.macs.gated_macs, 0);
  EXPECT_EQ(rg.macs.total_macs(), rp.macs.total_macs());
}

TEST(ConventionalArrayTest, Fp16NumericsStillExactForSmallValues) {
  Rng rng(6);
  const Matrix a = random_matrix(5, 7, rng);
  const Matrix b = random_matrix(7, 5, rng);
  ConventionalArraySim sim({8, 8}, {.fp16_numerics = true});
  const GemmRunResult r = sim.run(Dataflow::kWS, a, b);
  EXPECT_TRUE(r.out.approx_equal(gemm_ref(a, b), 0.0));
}

TEST(ConventionalArrayTest, WsPreloadCostsSrCycles) {
  Rng rng(8);
  const Matrix a = random_matrix(4, 6, rng);  // M=4, K=6
  const Matrix b = random_matrix(6, 3, rng);  // N=3
  ConventionalArraySim sim({8, 8});
  const GemmRunResult r = sim.run(Dataflow::kWS, a, b);
  EXPECT_EQ(r.preload_cycles, 6);  // S_R = K
  const GemmRunResult ris = sim.run(Dataflow::kIS, a, b);
  EXPECT_EQ(ris.preload_cycles, 6);
  EXPECT_TRUE(ris.out.approx_equal(r.out, 1e-3));
}

TEST(ConventionalArrayTest, OsDrainEqualsUsedRows) {
  Rng rng(9);
  const Matrix a = random_matrix(5, 4, rng);
  const Matrix b = random_matrix(4, 7, rng);
  ConventionalArraySim sim({8, 8});
  const GemmRunResult r = sim.run(Dataflow::kOS, a, b);
  EXPECT_EQ(r.drain_cycles, 5);
}

TEST(ConventionalArrayTest, SingleElementGemm) {
  Matrix a(1, 1), b(1, 1);
  a.at(0, 0) = 3.0f;
  b.at(0, 0) = 4.0f;
  ConventionalArraySim sim({2, 2});
  for (Dataflow df : {Dataflow::kOS, Dataflow::kWS, Dataflow::kIS}) {
    const GemmRunResult r = sim.run(df, a, b);
    EXPECT_EQ(r.out.at(0, 0), 12.0f) << to_string(df);
    EXPECT_EQ(r.cycles, 2) << to_string(df);  // 2*1 + 1 + 1 - 2
  }
}

}  // namespace
}  // namespace axon
