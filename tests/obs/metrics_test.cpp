// obs/metrics MetricsRegistry unit tests: handle semantics and the
// deterministic JSON snapshot (exact bytes — the snapshot feeds diffable
// CI artifacts, so its formatting is part of the contract), the disabled
// registry as a true null sink, register-once enforcement, and the
// MetricsProbe's registry contents reconciling with the ServeReport of
// the run it observed.
#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "serve/pool.hpp"
#include "serve/scenarios.hpp"

namespace axon::obs {
namespace {

TEST(MetricsRegistryTest, SnapshotRoundTripsThroughJson) {
  MetricsRegistry reg;
  ASSERT_TRUE(reg.enabled());
  MetricsRegistry::Counter c = reg.counter("c");
  MetricsRegistry::Gauge g = reg.gauge("g");
  MetricsRegistry::HistogramHandle h = reg.histogram("h");
  c.add();
  c.add(4);
  g.set(7);
  g.set_max(5);  // below current value: no-op
  g.set_max(9);
  for (i64 v : {1, 2, 3, 4, 5}) h.observe(v);

  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(g.value(), 9);
  EXPECT_EQ(reg.counter_value("c"), 5);
  EXPECT_EQ(reg.gauge_value("g"), 9);
  EXPECT_EQ(reg.counter_value("absent"), 0);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 5u);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);

  // Exact bytes: names sorted, all values integers, nearest-rank
  // percentiles. A formatting drift here is a diff in every CI artifact.
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"c\": 5\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g\": 9\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h\": {\"count\": 5, \"min\": 1, \"max\": 5, \"sum\": 15, "
      "\"p50\": 3, \"p90\": 5, \"p99\": 5}\n"
      "  }\n"
      "}";
  EXPECT_EQ(reg.to_json(), expected);
}

TEST(MetricsRegistryTest, EmptyRegistrySnapshotsEmptyKinds) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}");
}

TEST(MetricsRegistryTest, DisabledRegistryIsANullSink) {
  MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  MetricsRegistry::Counter c = reg.counter("c");
  MetricsRegistry::Gauge g = reg.gauge("g");
  MetricsRegistry::HistogramHandle h = reg.histogram("h");
  c.add(100);
  g.set(100);
  h.observe(100);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.get(), nullptr);
  EXPECT_EQ(reg.counter_value("c"), 0);
  EXPECT_EQ(reg.gauge_value("g"), 0);
  EXPECT_EQ(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.to_json(), "{}");
}

TEST(MetricsRegistryTest, ReRegistrationFailsLoudly) {
  MetricsRegistry reg;
  reg.counter("x");
  // Same kind and cross-kind duplicates both trip the check — two
  // subsystems may never silently alias one series.
  EXPECT_THROW(reg.counter("x"), CheckError);
  EXPECT_THROW(reg.gauge("x"), CheckError);
  EXPECT_THROW(reg.histogram("x"), CheckError);
  EXPECT_THROW(reg.counter(""), CheckError);
  // Names are claimed even on a disabled registry: flipping the enable
  // flag must never change which registrations are legal.
  MetricsRegistry off(false);
  off.gauge("y");
  EXPECT_THROW(off.counter("y"), CheckError);
}

TEST(MetricsProbeTest, RegistryReconcilesWithTheServeReport) {
  using namespace axon::serve;
  constexpr int kRequests = 1000;
  AcceleratorPool pool(serve_scale_pool_config(ReadyQueueImpl::kIndexed));
  MetricsRegistry reg;
  MetricsProbe probe(&reg);
  pool.add_probe(&probe);
  RequestQueue q = serve_scale_trace(kRequests);
  const ServeReport r = pool.serve(q);

  EXPECT_EQ(reg.counter_value("serve.requests"),
            static_cast<i64>(r.num_requests()));
  EXPECT_EQ(reg.counter_value("serve.batches"), r.total_batches);
  EXPECT_EQ(reg.counter_value("serve.chunks"), r.total_chunks);
  EXPECT_EQ(reg.counter_value("serve.preemptions"), r.preemptions);
  // Every non-final chunk retire is one requeue.
  EXPECT_EQ(reg.counter_value("serve.requeues"),
            r.total_chunks - r.total_batches);
  i64 misses = 0;
  for (const auto& rec : r.records) {
    if (!rec.met_deadline()) ++misses;
  }
  EXPECT_EQ(reg.counter_value("serve.deadline_misses"), misses);
  EXPECT_EQ(reg.gauge_value("serve.makespan_cycles"), r.makespan_cycles);
  const Histogram* latency = reg.find_histogram("serve.latency_cycles");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), r.num_requests());
  EXPECT_EQ(latency->percentile_or(99), r.latency().percentile_or(99));
  // The scale scenario keeps its queues busy: the peaks must have moved.
  EXPECT_GT(reg.gauge_value("serve.queue_depth_peak"), 0);
  EXPECT_GT(reg.gauge_value("serve.index_entries_peak"), 0);
}

}  // namespace
}  // namespace axon::obs
