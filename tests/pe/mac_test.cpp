#include "pe/mac.hpp"

#include <gtest/gtest.h>

namespace axon {
namespace {

TEST(MacTest, BasicAccumulation) {
  MacUnit u(/*zero_gating=*/false);
  float acc = 0.0f;
  acc = u.mac(2.0f, 3.0f, acc);
  acc = u.mac(4.0f, 0.5f, acc);
  EXPECT_EQ(acc, 8.0f);
  EXPECT_EQ(u.counters().active_macs, 2);
  EXPECT_EQ(u.counters().gated_macs, 0);
}

TEST(MacTest, ZeroGatingSkipsButPreservesResult) {
  MacUnit gated(/*zero_gating=*/true);
  MacUnit plain(/*zero_gating=*/false);
  float acc_g = 1.0f, acc_p = 1.0f;
  const float ops[][2] = {{0, 5}, {5, 0}, {2, 3}, {0, 0}, {-1, 4}};
  for (const auto& op : ops) {
    acc_g = gated.mac(op[0], op[1], acc_g);
    acc_p = plain.mac(op[0], op[1], acc_p);
  }
  EXPECT_EQ(acc_g, acc_p);  // gating never changes the math
  EXPECT_EQ(gated.counters().gated_macs, 3);
  EXPECT_EQ(gated.counters().active_macs, 2);
  EXPECT_EQ(plain.counters().gated_macs, 0);
  EXPECT_EQ(plain.counters().active_macs, 5);
}

TEST(MacTest, WithoutGatingZeroOperandsStillCountActive) {
  MacUnit u(/*zero_gating=*/false);
  (void)u.mac(0.0f, 7.0f, 0.0f);
  EXPECT_EQ(u.counters().active_macs, 1);
}

TEST(MacTest, IdleCyclesTracked) {
  MacUnit u;
  u.idle();
  u.idle();
  EXPECT_EQ(u.counters().idle_cycles, 2);
  EXPECT_EQ(u.counters().total_macs(), 0);
}

TEST(MacTest, Fp16NumericsRoundEachStep) {
  MacUnit u(/*zero_gating=*/false, /*fp16_numerics=*/true);
  // 2048 + 1 rounds back to 2048 in fp16.
  float acc = u.mac(32.0f, 64.0f, 0.0f);  // 2048, exact
  acc = u.mac(1.0f, 1.0f, acc);
  EXPECT_EQ(acc, 2048.0f);
}

TEST(MacTest, CountersAccumulateAcrossUnits) {
  MacCounters total;
  MacUnit a, b;
  (void)a.mac(1, 1, 0);
  (void)b.mac(0, 1, 0);
  b.idle();
  total += a.counters();
  total += b.counters();
  EXPECT_EQ(total.active_macs, 1);
  EXPECT_EQ(total.gated_macs, 1);
  EXPECT_EQ(total.idle_cycles, 1);
  EXPECT_EQ(total.total_macs(), 2);
}

TEST(MacTest, ResetCounters) {
  MacUnit u;
  (void)u.mac(1, 2, 0);
  u.reset_counters();
  EXPECT_EQ(u.counters().active_macs, 0);
}

}  // namespace
}  // namespace axon
