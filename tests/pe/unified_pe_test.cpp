#include "pe/unified_pe.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace axon {
namespace {

TEST(UnifiedPeTest, OsAccumulatesLocally) {
  UnifiedPe pe(Dataflow::kOS);
  PeIn in;
  in.horizontal = 2.0f;
  in.vertical = 3.0f;
  PeOut out = pe.step(in);
  EXPECT_EQ(pe.accumulator(), 6.0f);
  // Operands are forwarded for the neighbours.
  EXPECT_EQ(out.horizontal, 2.0f);
  EXPECT_EQ(out.vertical, 3.0f);
  EXPECT_FALSE(out.psum.has_value());
  in.horizontal = 4.0f;
  in.vertical = 1.0f;
  pe.step(in);
  EXPECT_EQ(pe.accumulator(), 10.0f);
  EXPECT_EQ(pe.drain_accumulator(), 10.0f);
  EXPECT_EQ(pe.accumulator(), 0.0f);
}

TEST(UnifiedPeTest, OsIdlesWithoutBothOperands) {
  UnifiedPe pe(Dataflow::kOS);
  PeIn in;
  in.horizontal = 2.0f;  // vertical missing
  pe.step(in);
  EXPECT_EQ(pe.accumulator(), 0.0f);
  EXPECT_EQ(pe.counters().idle_cycles, 1);
}

TEST(UnifiedPeTest, WsPreloadViaOutputInterconnect) {
  UnifiedPe pe(Dataflow::kWS);
  PeIn preload;
  preload.preload = true;
  preload.psum = 5.0f;  // MUX1/MUX2 steer this into the stationary register
  PeOut out = pe.step(preload);
  EXPECT_EQ(pe.stationary(), 5.0f);
  // The value is forwarded (one latch per hop) for deeper PEs.
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 5.0f);
  // Later values overwrite: the last value to pass is the one that stays,
  // which is what makes the whole column load in S_R cycles.
  preload.psum = 7.0f;
  out = pe.step(preload);
  EXPECT_EQ(pe.stationary(), 7.0f);
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 7.0f);
}

TEST(UnifiedPeTest, PreloadInOsRejected) {
  UnifiedPe pe(Dataflow::kOS);
  PeIn in;
  in.preload = true;
  in.psum = 1.0f;
  EXPECT_THROW(pe.step(in), CheckError);
}

TEST(UnifiedPeTest, WsMacChainsPsum) {
  UnifiedPe pe(Dataflow::kWS);
  PeIn preload;
  preload.preload = true;
  preload.psum = 3.0f;
  pe.step(preload);

  PeIn in;
  in.horizontal = 2.0f;  // streaming operand
  in.psum = 10.0f;       // partial sum from the neighbour
  PeOut out = pe.step(in);
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 16.0f);  // 10 + 2*3
  // Forwarded horizontally for the next PE in the row.
  EXPECT_EQ(out.horizontal, 2.0f);
}

TEST(UnifiedPeTest, WsStreamOriginStartsAtZero) {
  UnifiedPe pe(Dataflow::kWS);
  PeIn preload;
  preload.preload = true;
  preload.psum = 4.0f;
  pe.step(preload);
  PeIn in;
  in.horizontal = 5.0f;  // no incoming psum: this PE originates the stream
  PeOut out = pe.step(in);
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 20.0f);
}

TEST(UnifiedPeTest, WsBypassesPsumWhenIdle) {
  UnifiedPe pe(Dataflow::kWS);
  PeIn in;
  in.psum = 42.0f;  // no streaming operand this cycle
  PeOut out = pe.step(in);
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 42.0f);  // bypass-and-add: forwarded untouched
  EXPECT_EQ(pe.counters().idle_cycles, 1);
}

TEST(UnifiedPeTest, IsMirrorsWsWithVerticalStream) {
  UnifiedPe pe(Dataflow::kIS);
  PeIn preload;
  preload.preload = true;
  preload.psum = 3.0f;  // stationary input
  pe.step(preload);
  PeIn in;
  in.vertical = 4.0f;  // streaming filter operand
  in.psum = 1.0f;
  PeOut out = pe.step(in);
  ASSERT_TRUE(out.psum.has_value());
  EXPECT_EQ(*out.psum, 13.0f);
  EXPECT_EQ(out.vertical, 4.0f);
  EXPECT_FALSE(out.horizontal.has_value());
}

TEST(UnifiedPeTest, ReconfigureClearsState) {
  UnifiedPe pe(Dataflow::kOS);
  PeIn in;
  in.horizontal = 2.0f;
  in.vertical = 2.0f;
  pe.step(in);
  EXPECT_EQ(pe.accumulator(), 4.0f);
  pe.configure(Dataflow::kWS);
  EXPECT_EQ(pe.accumulator(), 0.0f);
  EXPECT_EQ(pe.stationary(), 0.0f);
  EXPECT_EQ(pe.dataflow(), Dataflow::kWS);
}

TEST(UnifiedPeTest, ZeroGatingCountsInOs) {
  UnifiedPe pe(Dataflow::kOS, /*zero_gating=*/true);
  PeIn in;
  in.horizontal = 0.0f;
  in.vertical = 5.0f;
  pe.step(in);
  EXPECT_EQ(pe.counters().gated_macs, 1);
  EXPECT_EQ(pe.accumulator(), 0.0f);
}

}  // namespace
}  // namespace axon
